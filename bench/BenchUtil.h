//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the table-regenerating benchmark harnesses.
///
/// Times are *virtual* seconds on the simulated Multimax (1 abstract
/// NS32332 instruction = 1.12 us, the paper's measured rate); see
/// DESIGN.md. Absolute numbers therefore share units with the paper's
/// tables, but the shape (ratios, crossovers) is the claim under test.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_BENCH_BENCHUTIL_H
#define MULT_BENCH_BENCHUTIL_H

#include "core/Engine.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/TraceExport.h"
#include "runtime/Printer.h"
#include "support/StrUtil.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

namespace multbench {

using namespace mult;

/// Observability switches, environment-driven so the benchmark binaries
/// keep their argument-free table-regeneration interface:
///   MULT_TRACE=1       enable the event tracer for the timed region
///   MULT_METRICS=1     print the aggregated metrics report per run, plus
///                      one machine-parseable ";; virtual-cycles: <tag> <n>"
///                      line per run (the regression dashboard's input)
///   MULT_PROFILE=1     enable tracing and print the critical-path profile
///                      (work, span, parallelism, per-future-site) per run
///   MULT_TRACE_DIR=D   write D/<tag>.trace.json per traced run
///   MULT_TRACE_MODE=M  trace sink: unbounded (default), ring:N, or
///                      stream[:PATH] (see Tracer::configureSink)
///   MULT_FAULTS=SPEC   arm the deterministic fault injector for every
///                      run (picked up by the Engine itself; see
///                      fault/FaultPlan.h for the spec grammar). With
///                      MULT_METRICS also set, one machine-parseable
///                      ";; fault-metrics: <tag> <name> <n>" line is
///                      printed per robustness counter per run.
///   MULT_CHECKPOINT=N  arm the checkpointed-recovery policy (capture a
///                      whole task's resumable state every N busy
///                      cycles; picked up by the Engine itself). Changes
///                      virtual time, so like MULT_FAULTS it must stay
///                      off for golden runs; with MULT_METRICS and
///                      MULT_FAULTS set, checkpoint counters join the
///                      ";; fault-metrics:" lines
///   MULT_ADAPTIVE_T=1  switch every run from the static inlining
///                      threshold to the per-processor adaptive
///                      controller (sched/Adaptive.h); the static T
///                      passed by the bench becomes the starting point
///   MULT_SITE_POLICIES=F  load per-future-site policies from F (picked
///                      up by the Engine itself; see :profile FILE)
///   MULT_TELEMETRY=prom:PATH|json:PATH  export the always-on telemetry
///                      registry (counters, gauges, latency histograms)
///                      when the engine is destroyed. Recording itself
///                      needs no switch; this only chooses an export.
///
/// Always printed per run (no switch): one ";; host: <tag> ..." line of
/// host wall-clock phase times and the derived ns-per-virtual-cycle.
/// Host time is machine-dependent noise, so the golden comparator
/// (tools/collect_metrics.py) must never track it. With MULT_METRICS,
/// deterministic ";; histo: <tag> <name> ..." summary lines are printed
/// for the virtual-time latency histograms and ARE golden-tracked.
inline bool traceRequested() { return std::getenv("MULT_TRACE") != nullptr; }
inline bool metricsRequested() {
  return std::getenv("MULT_METRICS") != nullptr;
}
inline bool profileRequested() {
  return std::getenv("MULT_PROFILE") != nullptr;
}
inline bool adaptiveRequested() {
  return std::getenv("MULT_ADAPTIVE_T") != nullptr;
}

/// Builds a machine configuration for one benchmark run.
inline EngineConfig machine(unsigned Procs,
                            std::optional<unsigned> InlineT = std::nullopt,
                            bool Lazy = false) {
  EngineConfig C;
  C.NumProcessors = Procs;
  C.InlineThreshold = InlineT;
  C.LazyFutures = Lazy;
  C.HeapWords = size_t(1) << 23;
  C.AdaptiveInline = adaptiveRequested();
  C.EnableTracing = traceRequested() || profileRequested();
  if (const char *Mode = std::getenv("MULT_TRACE_MODE"))
    C.TraceSink = Mode;
  return C;
}

/// Post-run observability hook: metrics to stdout and/or a Chrome-trace
/// JSON file named after \p Tag, per the environment switches above.
inline void reportRun(Engine &E, const std::string &Tag) {
  if (metricsRequested()) {
    std::printf("\n;; metrics: %s\n", Tag.c_str());
    FileOutStream &OS = FileOutStream::stdoutStream();
    dumpMetrics(OS, buildMetrics(E.machine(), E.stats(), E.gcStats(),
                                 E.tracer(), E.raceDetector(),
                                 &E.telemetry(), E.config().CheckpointEvery));
    OS.flush();
    // The stable parse target for tools/collect_metrics.py: exact virtual
    // cycle count of the preceding timed run (deterministic per commit).
    std::printf(";; virtual-cycles: %s %llu\n", Tag.c_str(),
                static_cast<unsigned long long>(E.stats().ElapsedCycles));
    // Virtual-time latency histograms, same determinism contract as the
    // cycle count above: the collector tracks these as <tag>@<name>.
    const Telemetry &T = E.telemetry();
    for (const char *Name :
         {"gc_pause_cycles", "touch_wait_cycles", "task_lifetime_cycles"}) {
      Telemetry::Id Id = T.find(Name);
      if (Id == Telemetry::InvalidId)
        continue;
      LatencyHistogram H = T.merged(Id);
      std::string N = Name;
      N.resize(N.size() - 7); // strip "_cycles"
      for (char &C : N)
        if (C == '_')
          C = '-';
      std::printf(";; histo: %s %s n=%llu sum=%llu p50=%llu p90=%llu "
                  "p99=%llu max=%llu\n",
                  Tag.c_str(), N.c_str(),
                  static_cast<unsigned long long>(H.count()),
                  static_cast<unsigned long long>(H.sum()),
                  static_cast<unsigned long long>(H.percentile(50)),
                  static_cast<unsigned long long>(H.percentile(90)),
                  static_cast<unsigned long long>(H.percentile(99)),
                  static_cast<unsigned long long>(H.max()));
    }
    if (E.faults().armed()) {
      std::printf(";; fault-metrics: %s faults-injected %llu\n", Tag.c_str(),
                  static_cast<unsigned long long>(E.stats().FaultsInjected));
      std::printf(";; fault-metrics: %s heap-exhausted-stops %llu\n",
                  Tag.c_str(),
                  static_cast<unsigned long long>(
                      E.stats().HeapExhaustedStops));
      std::printf(";; fault-metrics: %s deadlocks-detected %llu\n",
                  Tag.c_str(),
                  static_cast<unsigned long long>(
                      E.stats().DeadlocksDetected));
      std::printf(";; fault-metrics: %s procs-killed %llu\n", Tag.c_str(),
                  static_cast<unsigned long long>(E.stats().ProcsKilled));
      std::printf(";; fault-metrics: %s tasks-recovered %llu\n", Tag.c_str(),
                  static_cast<unsigned long long>(E.stats().TasksRecovered));
      std::printf(";; fault-metrics: %s tasks-orphaned %llu\n", Tag.c_str(),
                  static_cast<unsigned long long>(E.stats().TasksOrphaned));
      std::printf(";; fault-metrics: %s recovery-cycles %llu\n", Tag.c_str(),
                  static_cast<unsigned long long>(E.stats().RecoveryCycles));
      std::printf(";; fault-metrics: %s byzantine-lies %llu\n", Tag.c_str(),
                  static_cast<unsigned long long>(E.stats().ByzantineLies));
      std::printf(";; fault-metrics: %s cross-checks %llu\n", Tag.c_str(),
                  static_cast<unsigned long long>(E.stats().CrossChecks));
      std::printf(";; fault-metrics: %s byzantine-detected %llu\n",
                  Tag.c_str(),
                  static_cast<unsigned long long>(
                      E.stats().ByzantineDetected));
      // Checkpoint counters only exist when the policy is armed; keep
      // faulted-but-uncheckpointed outputs structurally unchanged.
      if (E.config().CheckpointEvery) {
        std::printf(";; fault-metrics: %s checkpoints-taken %llu\n",
                    Tag.c_str(),
                    static_cast<unsigned long long>(
                        E.stats().CheckpointsTaken));
        std::printf(";; fault-metrics: %s checkpoint-cycles %llu\n",
                    Tag.c_str(),
                    static_cast<unsigned long long>(
                        E.stats().CheckpointCycles));
        std::printf(";; fault-metrics: %s tasks-restored %llu\n", Tag.c_str(),
                    static_cast<unsigned long long>(E.stats().TasksRestored));
        std::printf(";; fault-metrics: %s max-task-recovery-cycles %llu\n",
                    Tag.c_str(),
                    static_cast<unsigned long long>(
                        E.stats().MaxTaskRecoveryCycles));
      }
    }
  }
  if (profileRequested()) {
    std::printf("\n;; profile: %s\n", Tag.c_str());
    FileOutStream &OS = FileOutStream::stdoutStream();
    dumpProfile(OS, analyzeCriticalPath(E.tracer()),
                E.machine().numProcessors(), E.stats().ElapsedCycles);
    OS.flush();
  }
  if (const char *Dir = std::getenv("MULT_TRACE_DIR");
      Dir && E.tracer().enabled()) {
    std::string Path = std::string(Dir) + "/" + Tag + ".trace.json";
    if (FILE *F = std::fopen(Path.c_str(), "w")) {
      FileOutStream FS(F);
      writeChromeTrace(FS, E.tracer(), E.machine());
      FS.flush();
      std::fclose(F);
      std::fprintf(stderr, ";; trace: %s (%zu events)\n", Path.c_str(),
                   E.tracer().size());
    } else {
      std::fprintf(stderr, ";; trace: cannot open %s\n", Path.c_str());
    }
  }
  // Host wall-clock phases, printed for every run with no switch. These
  // are simulator self-times (steady_clock), noisy and machine-dependent:
  // tools/collect_metrics.py recognizes ";; host:" and refuses to let it
  // anywhere near the golden comparison. Run includes nested GC time.
  {
    const Telemetry &T = E.telemetry();
    uint64_t RunNs = T.hostNs(Telemetry::Phase::Run);
    uint64_t Cycles = E.stats().ElapsedCycles;
    double NsPerCycle =
        Cycles ? static_cast<double>(RunNs) / static_cast<double>(Cycles)
               : 0.0;
    E.telemetry().set(E.telemetryIds().HostNsPerCycle, NsPerCycle);
    std::printf(";; host: %s read-ns=%llu compile-ns=%llu run-ns=%llu "
                "gc-ns=%llu ns-per-vcycle=%.2f\n",
                Tag.c_str(),
                static_cast<unsigned long long>(
                    T.hostNs(Telemetry::Phase::Read)),
                static_cast<unsigned long long>(
                    T.hostNs(Telemetry::Phase::Compile)),
                static_cast<unsigned long long>(RunNs),
                static_cast<unsigned long long>(T.hostNs(Telemetry::Phase::Gc)),
                NsPerCycle);
  }
}

/// Evaluates \p Setup (library code), then times \p Expr. Exits loudly on
/// any error: a benchmark that silently fails is worse than a crash.
inline double runVirtualSeconds(Engine &E, const std::string &Setup,
                                const std::string &Expr,
                                std::string *ResultOut = nullptr) {
  if (!Setup.empty()) {
    EvalResult S = E.eval(Setup);
    if (!S.ok()) {
      std::fprintf(stderr, "bench setup failed: %s\n", S.Error.c_str());
      std::exit(1);
    }
  }
  E.resetStats();
  EvalResult R = E.eval(Expr);
  if (!R.ok()) {
    std::fprintf(stderr, "bench run failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  if (ResultOut)
    *ResultOut = valueToString(R.Val);
  return E.stats().elapsedSeconds();
}

/// Header/rule printing for the ASCII tables.
inline void printRule(unsigned Width = 72) {
  for (unsigned I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

inline void printTitle(const char *Title) {
  std::printf("\n%s\n", Title);
  printRule();
}

} // namespace multbench

#endif // MULT_BENCH_BENCHUTIL_H
