//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Table 2: the cleaned-up *sequential* Boyer benchmark
/// under three compilers —
///   T3                (no implicit touches at all),
///   Mul-T, no opts    (a touch at every strict operand),
///   Mul-T + opts      (the first-order type analysis removes redundant
///                      touches).
/// The paper's row values are 14.5 / 29 / 24 seconds: touch checks double
/// the time, and the optimizer brings the overhead down to ~65%.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "programs/BoyerProgram.h"

using namespace multbench;

namespace {

struct Row {
  const char *Label;
  bool Touches;
  bool Optimize;
  const char *Paper;
};

double runBoyer(bool Touches, bool Optimize, int Iterations,
                const CompileStats **StatsOut, Engine **KeepAlive) {
  EngineConfig C = machine(1);
  C.EmitTouchChecks = Touches;
  C.OptimizeTouches = Optimize;
  static std::vector<std::unique_ptr<Engine>> Keep;
  Keep.push_back(std::make_unique<Engine>(C));
  Engine &E = *Keep.back();
  std::string Setup = std::string(BoyerCommonSource) + BoyerSequentialArgs;
  std::string Result;
  double Secs = runVirtualSeconds(
      E, Setup, "(boyer-test " + std::to_string(Iterations) + ")", &Result);
  if (Result != "#t") {
    std::fprintf(stderr, "boyer failed to prove the theorem: %s\n",
                 Result.c_str());
    std::exit(1);
  }
  reportRun(E, !Touches ? "boyer_seq_t3"
                        : (Optimize ? "boyer_seq_opt" : "boyer_seq_noopt"));
  *StatsOut = &E.compileStats();
  *KeepAlive = &E;
  return Secs / Iterations;
}

} // namespace

int main(int argc, char **argv) {
  int Iterations = argc > 1 ? std::atoi(argv[1]) : 1;

  printTitle("Table 2: cleaned-up sequential Boyer benchmark "
             "(virtual seconds)");
  static const Row Rows[] = {
      {"T3 (no touch checks)", false, false, "14.5"},
      {"Mul-T, no touch optimizations", true, false, "29"},
      {"Mul-T plus touch optimizations", true, true, "24"},
  };

  std::printf("  %-34s %9s  %7s   %s\n", "configuration", "measured",
              "paper", "touch checks emitted/strict positions");
  double T3Time = 0;
  for (const Row &R : Rows) {
    const CompileStats *CS = nullptr;
    Engine *E = nullptr;
    double Secs = runBoyer(R.Touches, R.Optimize, Iterations, &CS, &E);
    if (!R.Touches)
      T3Time = Secs;
    std::printf("  %-34s %9s  %7s   %llu/%llu\n", R.Label,
                formatSeconds(Secs).c_str(), R.Paper,
                static_cast<unsigned long long>(CS->TouchesEmitted),
                static_cast<unsigned long long>(CS->StrictPositions));
  }

  printRule();
  const CompileStats *CS = nullptr;
  Engine *E = nullptr;
  double NoOpt = runBoyer(true, false, Iterations, &CS, &E);
  double Opt = runBoyer(true, true, Iterations, &CS, &E);
  std::printf("  touch overhead without optimization: %4.0f%%   (paper: "
              "~100%%)\n",
              (NoOpt / T3Time - 1.0) * 100.0);
  std::printf("  touch overhead with optimization:    %4.0f%%   (paper: "
              " ~65%%)\n",
              (Opt / T3Time - 1.0) * 100.0);
  return 0;
}
