//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Table 4: execution time of the four application
/// benchmarks — permute, queens, the transformation-based compiler, and
/// destructive mergesort (measured and theoretical) — for a sequential
/// baseline and 1..12 processors.
///
/// Parameters are scaled down from the paper's (10,000-vector permute,
/// 11-queens, 8192-element mergesort) to interpreter-friendly sizes; the
/// claims under test are the *shapes*: near-linear speedup for permute and
/// queens, compiler speedup limited by its sequential phases and the
/// assembler lock, and mergesort tracking the t(k,l) model. The "seq" row
/// runs with touch checks off and every future inlined — the closest
/// expressible analogue of "the sequential version in T3".
///
/// The paper's own numbers (seconds): permute 8520/11554/5823/2995/1598/
/// 1293, queens 27.8/33.2/16.6/8.5/4.3/3.0, compiler 98/159/94/64/53/54,
/// mergesort .99/1.82/.99/.57/.45/.43.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "programs/MergesortProgram.h"
#include "programs/MiniCompilerProgram.h"
#include "programs/PermuteProgram.h"
#include "programs/QueensProgram.h"

#include <cmath>

using namespace multbench;

namespace {

struct Scale {
  int PermuteTarget = 48;
  int PermuteLen = 20;
  int PermuteDmin = 10;
  int PermuteChunk = 8;
  int PermuteBatch = 16;
  int QueensN = 8;
  int CompilerProcs = 21; // the paper's Pascal program had 21 procedures
  int CompilerDepth = 6;
  int MergesortK = 11; // 2^11 = 2048 elements
};

/// One engine per cell; Seq = the sequential-baseline configuration.
Engine makeEngine(unsigned Procs, bool Seq, std::optional<unsigned> T) {
  EngineConfig C = machine(Seq ? 1 : Procs, Seq ? std::optional<unsigned>(0)
                                                : T);
  C.EmitTouchChecks = !Seq;
  return Engine(C);
}

/// Cell tag for reportRun: "permute_seq", "permute_p4", ...
std::string cellTag(const char *App, unsigned Procs, bool Seq) {
  return Seq ? std::string(App) + "_seq" : strFormat("%s_p%u", App, Procs);
}

double permuteCell(unsigned Procs, bool Seq, const Scale &S) {
  // Paper: run with T = infinity ("plenty of parallelism ... even though
  // no inlining was used").
  Engine E = makeEngine(Procs, Seq, std::nullopt);
  double Secs = runVirtualSeconds(
      E, PermuteSource,
      strFormat("(permute-run %d %d %d %d %d)", S.PermuteTarget,
                S.PermuteLen, S.PermuteDmin, S.PermuteChunk,
                S.PermuteBatch));
  reportRun(E, cellTag("permute", Procs, Seq));
  return Secs;
}

double queensCell(unsigned Procs, bool Seq, const Scale &S) {
  // Large-granularity tasks; the paper used no inlining.
  Engine E = makeEngine(Procs, Seq, std::nullopt);
  double Secs = runVirtualSeconds(E, QueensSource,
                                  strFormat(Seq ? "(queens-seq %d)"
                                                : "(queens-par %d)",
                                            S.QueensN));
  reportRun(E, cellTag("queens", Procs, Seq));
  return Secs;
}

double compilerCell(unsigned Procs, bool Seq, const Scale &S) {
  Engine E = makeEngine(Procs, Seq, std::nullopt);
  double Secs = runVirtualSeconds(
      E, MiniCompilerSource,
      strFormat("(car (mc-compile-program (mc-gen-program %d %d) %s))",
                S.CompilerProcs, S.CompilerDepth, Seq ? "#f" : "#t"));
  reportRun(E, cellTag("compiler", Procs, Seq));
  return Secs;
}

double mergesortCell(unsigned Procs, bool Seq, const Scale &S) {
  // Paper: "Inlining (T = 1) is crucial to good performance".
  Engine E = makeEngine(Procs, Seq, 1u);
  double Secs = runVirtualSeconds(
      E, MergesortSource,
      strFormat("(mergesort-test %d)", 1 << S.MergesortK));
  reportRun(E, cellTag("msort", Procs, Seq));
  return Secs;
}

/// The paper's analytical model: t(k,l) = c[(k-l-2)2^(k-l-1) + 2^k],
/// with c fitted from the measured one-processor time (l = 0).
double mergesortTheory(double OneProcSeconds, int K, unsigned Procs) {
  auto Model = [&](int L) {
    return double(K - L - 2) * std::pow(2.0, K - L - 1) +
           std::pow(2.0, K);
  };
  double L = std::log2(double(Procs));
  if (std::abs(L - std::round(L)) > 1e-9)
    return -1.0; // the paper leaves non-powers-of-two blank
  double C = OneProcSeconds / Model(0);
  return C * Model(int(std::round(L)));
}

} // namespace

int main() {
  Scale S;

  printTitle("Table 4: execution time for Mul-T benchmarks "
             "(virtual seconds; paper sizes scaled down)");
  std::printf("  %-5s %9s %9s %9s %12s %12s\n", "n", "permute", "queens",
              "compiler", "msort-meas", "msort-theory");

  struct RowSpec {
    const char *Label;
    unsigned Procs;
    bool Seq;
  };
  static const RowSpec Rows[] = {
      {"seq", 1, true}, {"1", 1, false}, {"2", 2, false},
      {"4", 4, false},  {"8", 8, false}, {"12", 12, false},
  };

  double MsortOneProc = 0;
  for (const RowSpec &R : Rows) {
    double Permute = permuteCell(R.Procs, R.Seq, S);
    double Queens = queensCell(R.Procs, R.Seq, S);
    double Compiler = compilerCell(R.Procs, R.Seq, S);
    double Msort = mergesortCell(R.Procs, R.Seq, S);
    if (!R.Seq && R.Procs == 1)
      MsortOneProc = Msort;

    std::string Theory = "";
    if (!R.Seq && R.Procs > 1) {
      double T = mergesortTheory(MsortOneProc, S.MergesortK, R.Procs);
      Theory = T < 0 ? "" : formatSeconds(T);
    } else if (!R.Seq && R.Procs == 1) {
      Theory = "(" + formatSeconds(Msort) + ")";
    }
    std::printf("  %-5s %9s %9s %9s %12s %12s\n", R.Label,
                formatSeconds(Permute).c_str(),
                formatSeconds(Queens).c_str(),
                formatSeconds(Compiler).c_str(),
                formatSeconds(Msort).c_str(), Theory.c_str());
  }

  printRule();
  std::printf("  paper (full-size inputs, seconds):\n");
  std::printf("  %-5s %9s %9s %9s %12s %12s\n", "seq", "8520", "27.8", "98",
              ".99", "");
  std::printf("  %-5s %9s %9s %9s %12s %12s\n", "1", "11554", "33.2", "159",
              "1.82", "(1.82)");
  std::printf("  %-5s %9s %9s %9s %12s %12s\n", "2", "5823", "16.6", "94",
              ".99", ".98");
  std::printf("  %-5s %9s %9s %9s %12s %12s\n", "4", "2995", "8.5", "64",
              ".57", ".60");
  std::printf("  %-5s %9s %9s %9s %12s %12s\n", "8", "1598", "4.3", "53",
              ".45", ".42");
  std::printf("  %-5s %9s %9s %9s %12s %12s\n", "12", "1293", "3.0", "54",
              ".43", "");
  return 0;
}
