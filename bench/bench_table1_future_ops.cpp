//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Table 1: the cost of Mul-T future operations, in
/// NS32332 instructions, step by step for `(touch (future 0))`; plus the
/// surrounding microbenchmark claims of section 4 (196-instruction total,
/// ~220 us at ~1 MIPS, 25:1 ratio against a trivial call, ~119
/// instructions when nothing blocks).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace multbench;

namespace {

/// Runs `(touch (future 0))` once on one processor and returns the step
/// breakdown.
FutureStepStats measureSteps() {
  Engine E(machine(1));
  E.resetStats();
  EvalResult R = E.eval("(touch (future 0))");
  if (!R.ok()) {
    std::fprintf(stderr, "failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  reportRun(E, "table1_touch_future");
  return E.stats().Steps;
}

/// Cost of calling and returning from (lambda () 0), by loop differencing.
uint64_t measureTrivialCall() {
  Engine E(machine(1));
  EvalResult D = E.eval("(define (trivial) 0)");
  (void)D;
  auto Loop = [&](const char *Body, const char *Tag) {
    E.resetStats();
    EvalResult R = E.eval(Body);
    if (!R.ok())
      std::exit(1);
    reportRun(E, Tag);
    return E.stats().ElapsedCycles;
  };
  uint64_t With = Loop("(let loop ((i 0)) (if (= i 10000) 'done "
                       "(begin (trivial) (loop (+ i 1)))))",
                       "table1_call_loop");
  uint64_t Without =
      Loop("(let loop ((i 0)) (if (= i 10000) 'done "
           "(begin 0 (loop (+ i 1)))))",
           "table1_empty_loop");
  return (With - Without) / 10000;
}

/// The no-blocking variant: the child resolves before the parent touches.
uint64_t measureNonBlocking() {
  Engine E(machine(2));
  E.resetStats();
  EvalResult R = E.eval(
      "(let ((f (future 0)))"
      "  (let spin ((i 0)) (if (< i 2000) (spin (+ i 1)) #t))"
      "  (touch f))");
  if (!R.ok())
    std::exit(1);
  reportRun(E, "table1_nonblocking");
  return E.stats().Steps.total();
}

void printRow(const char *Step, uint64_t Measured, const char *Paper) {
  std::printf("  %-44s %8llu   %s\n", Step,
              static_cast<unsigned long long>(Measured), Paper);
}

} // namespace

int main() {
  printTitle("Table 1: cost of Mul-T future operations "
             "(NS32332 instructions)");
  std::printf("  %-44s %8s   %s\n", "step", "measured", "paper");
  FutureStepStats S = measureSteps();
  printRow("1. make thunk and call *future", S.MakeThunkCycles, "15");
  printRow("2. create future and task; enqueue task", S.CreateEnqueueCycles,
           "41");
  printRow("3. block touching task", S.BlockCycles, "33");
  printRow("4. dequeue and start executing a task", S.DispatchNewCycles,
           "37");
  printRow("5. resolve future, enqueue waiters (w=1)", S.ResolveCycles,
           "26 + 14w = 40");
  printRow("6. dequeue interrupted task and resume", S.DispatchSuspCycles,
           "30");
  printRule();
  printRow("total for (touch (future 0))", S.total(), "~196");
  std::printf("  %-44s %8.0f   %s\n", "equivalent virtual time (us)",
              EngineStats::cyclesToSeconds(S.total()) * 1e6, "~220 us");

  printTitle("Section 4 microbenchmarks around Table 1");
  uint64_t Call = measureTrivialCall();
  printRow("call + return of (lambda () 0)", Call, "8");
  std::printf("  %-44s %7.1f:1  %s\n", "(touch (future 0)) vs trivial call",
              double(S.total()) / double(Call),
              "~25:1 (Multilisp managed only 3:1)");
  uint64_t NonBlocking = measureNonBlocking();
  printRow("future whose touch never blocks", NonBlocking, "~119");
  return 0;
}
