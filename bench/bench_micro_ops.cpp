//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the runtime's host-side building
/// blocks: wall-clock cost of simulation, allocation, touch checks,
/// future create/resolve, queue operations, compilation, and GC. These
/// measure the *simulator's* speed (useful when sizing experiments), not
/// the virtual-machine cycle counts the tables report.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "reader/Reader.h"

#include <benchmark/benchmark.h>

using namespace multbench;

namespace {

void BM_EngineConstruction(benchmark::State &State) {
  for (auto _ : State) {
    Engine E(machine(1));
    benchmark::DoNotOptimize(&E);
  }
}
BENCHMARK(BM_EngineConstruction)->Unit(benchmark::kMillisecond)->Iterations(20);

void BM_CompileSmallForm(benchmark::State &State) {
  Engine E(machine(1));
  Reader Rd(E.builder(), "(define (f x) (+ x 1))");
  ReadResult RR = Rd.read();
  for (auto _ : State) {
    Compiler::Result R = E.compiler().compile(RR.Datum);
    benchmark::DoNotOptimize(R.TopCode);
  }
}
BENCHMARK(BM_CompileSmallForm)->Iterations(2000);

void BM_EvalArithmeticLoop(benchmark::State &State) {
  Engine E(machine(1));
  for (auto _ : State) {
    EvalResult R = E.eval(
        "(let loop ((i 0) (a 0)) (if (= i 1000) a (loop (+ i 1) "
        "(+ a i))))");
    benchmark::DoNotOptimize(R.Val.bits());
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_EvalArithmeticLoop)->Iterations(500);

void BM_ConsAllocation(benchmark::State &State) {
  Engine E(machine(1));
  for (auto _ : State) {
    EvalResult R = E.eval(
        "(let loop ((i 0) (l '())) (if (= i 500) l (loop (+ i 1) "
        "(cons i l))))");
    benchmark::DoNotOptimize(R.Val.bits());
  }
  State.SetItemsProcessed(State.iterations() * 500);
}
BENCHMARK(BM_ConsAllocation)->Iterations(500);

void BM_FutureCreateResolveTouch(benchmark::State &State) {
  Engine E(machine(1));
  for (auto _ : State) {
    EvalResult R = E.eval("(touch (future 0))");
    benchmark::DoNotOptimize(R.Val.bits());
  }
}
BENCHMARK(BM_FutureCreateResolveTouch)->Iterations(2000);

void BM_FutureInlined(benchmark::State &State) {
  Engine E(machine(1, 0u));
  for (auto _ : State) {
    EvalResult R = E.eval("(touch (future 0))");
    benchmark::DoNotOptimize(R.Val.bits());
  }
}
BENCHMARK(BM_FutureInlined)->Iterations(2000);

void BM_TouchCheckHot(benchmark::State &State) {
  // 1000 dynamic touch checks of a non-future (the tbit fast path).
  Engine E(machine(1));
  EvalResult D = E.eval("(define cell (cons 5 '()))");
  (void)D;
  for (auto _ : State) {
    EvalResult R = E.eval(
        "(let loop ((i 0)) (if (= i 1000) 'done (begin (touch (car cell)) "
        "(loop (+ i 1)))))");
    benchmark::DoNotOptimize(R.Val.bits());
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_TouchCheckHot)->Iterations(500);

void BM_WorkStealingFanout(benchmark::State &State) {
  // 32 tasks drained across 8 virtual processors.
  for (auto _ : State) {
    Engine E(machine(8));
    EvalResult R = E.eval(
        "(define (spawn n) (if (= n 0) '() (cons (future (* n n)) "
        "(spawn (- n 1)))))"
        "(define (drain l a) (if (null? l) a (drain (cdr l) "
        "(+ a (touch (car l))))))"
        "(drain (spawn 32) 0)");
    benchmark::DoNotOptimize(R.Val.bits());
  }
}
BENCHMARK(BM_WorkStealingFanout)->Unit(benchmark::kMillisecond)->Iterations(20);

void BM_GarbageCollection(benchmark::State &State) {
  EngineConfig C = machine(4);
  C.HeapWords = size_t(1) << 18;
  Engine E(C);
  EvalResult D = E.eval(
      "(define (build n) (if (= n 0) '() (cons (make-vector 6 n) "
      "(build (- n 1)))))"
      "(define keep (build 500))");
  (void)D;
  for (auto _ : State) {
    EvalResult R = E.eval("(%gc)");
    benchmark::DoNotOptimize(R.Val.bits());
  }
}
BENCHMARK(BM_GarbageCollection)->Unit(benchmark::kMicrosecond)->Iterations(500);

void BM_LazyFutureSeams(benchmark::State &State) {
  Engine E(machine(1, std::nullopt, /*Lazy=*/true));
  for (auto _ : State) {
    EvalResult R = E.eval("(touch (future 0))");
    benchmark::DoNotOptimize(R.Val.bits());
  }
}
BENCHMARK(BM_LazyFutureSeams)->Iterations(2000);

} // namespace

BENCHMARK_MAIN();
