//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the *lazy futures* mechanism the paper proposes but did not
/// implement (section 3): revocable inlining via stack splitting.
///
/// Three comparisons, each against eager futures (T=inf) and plain
/// inlining (T=1):
///   1. a divide-and-conquer tree: lazy should match inlining's low
///      overhead on 1 processor AND eager's speedup on 8;
///   2. bursty task creation (the starvation case where fixed-threshold
///      inlining loses);
///   3. the section-3 semaphore example: plain inlining deadlocks, lazy
///      futures complete (the "unwelding" claim).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace multbench;

namespace {

const char *TreeProgram = R"lisp(
  (define (work) (let loop ((i 0)) (if (< i 300) (loop (+ i 1)) 1)))
  (define (tree n)
    (if (< n 2)
        (work)
        (+ (future (tree (- n 1))) (tree (- n 2)))))
  (tree 14)
)lisp";

/// Bursty creation: a burst of futures, then a long futureless stretch,
/// repeated. Fixed-threshold inlining kills the burst's parallelism
/// because the queue looks full at creation time.
const char *BurstyProgram = R"lisp(
  (define (work) (let loop ((i 0)) (if (< i 2500) (loop (+ i 1)) 1)))
  (define (spawn-burst k)
    (if (= k 0) '() (cons (future (work)) (spawn-burst (- k 1)))))
  (define (drain l acc)
    (if (null? l) acc (drain (cdr l) (+ acc (touch (car l))))))
  (let loop ((round 0) (acc 0))
    (if (= round 6)
        acc
        (loop (+ round 1) (+ acc (drain (spawn-burst 16) 0)))))
)lisp";

const char *DeadlockProgram = R"lisp(
  (let ((x (make-semaphore)))
    (let ((f (future (begin (semaphore-p x) 7))))
      (semaphore-v x)
      (touch f)))
)lisp";

struct Mode {
  const char *Name;
  std::optional<unsigned> T;
  bool Lazy;
};

const Mode Modes[] = {
    {"eager (T=inf)", std::nullopt, false},
    {"inlining (T=1)", 1u, false},
    {"inlining (T=8)", 8u, false},
    {"lazy futures", std::nullopt, true},
};

void sweep(const char *Name, const char *Prog) {
  std::printf("\n  %s (virtual seconds; futures created):\n", Name);
  std::printf("    %-16s %10s %18s %10s %8s\n", "mode", "1 proc",
              "8 procs", "speedup", "futures");
  for (const Mode &M : Modes) {
    Engine E1(machine(1, M.T, M.Lazy));
    double S1 = runVirtualSeconds(E1, "", Prog);
    Engine E8(machine(8, M.T, M.Lazy));
    double S8 = runVirtualSeconds(E8, "", Prog);
    reportRun(E8, strFormat("lazy_%s_p8", M.Name));
    std::printf("    %-16s %10s %10s (%llu st) %9.2fx %8llu\n", M.Name,
                formatSeconds(S1).c_str(), formatSeconds(S8).c_str(),
                static_cast<unsigned long long>(E8.stats().SeamsStolen),
                S1 / S8,
                static_cast<unsigned long long>(E8.stats().FuturesCreated));
  }
}

} // namespace

int main() {
  printTitle("Lazy futures: the paper's proposed revocable inlining "
             "(section 3)");
  sweep("divide-and-conquer tree", TreeProgram);
  sweep("bursty task creation", BurstyProgram);

  std::printf("\n  parent-child welding (the section-3 semaphore "
              "example):\n");
  for (const Mode &M : Modes) {
    Engine E(machine(2, M.Lazy ? std::nullopt : std::optional<unsigned>(0),
                     M.Lazy));
    EvalResult R = E.eval(DeadlockProgram);
    const char *Outcome =
        R.ok() ? "completes"
               : (R.K == EvalResult::Kind::Deadlock ? "DEADLOCK"
                                                    : R.Error.c_str());
    std::printf("    %-16s -> %s\n",
                M.Lazy ? "lazy futures" : "always inline (T=0)", Outcome);
    if (!M.Lazy)
      break; // one representative inlining row is enough
  }
  {
    Engine E(machine(2, std::nullopt, true));
    EvalResult R = E.eval(DeadlockProgram);
    std::printf("    %-16s -> %s (seams stolen: %llu)\n", "lazy futures",
                R.ok() ? "completes" : "DEADLOCK",
                static_cast<unsigned long long>(E.stats().SeamsStolen));
  }

  printRule();
  std::printf("  claim (paper section 3): lazy futures get inlining's "
              "cheap creation\n  everywhere except where splitting is "
              "actually needed, and unweld blocked\n  children so the "
              "inlining deadlock cannot happen.\n");
  return 0;
}
