//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the section 2.2 claim about implicit-touch overhead:
/// "In several benchmarks the overhead without these optimizations was
/// about 100%; with the optimizations it ranges from under 20% to nearly
/// 100%; however, 65% seems to be a fairly typical number for programs
/// that do not heavily emphasize iterative loops."
///
/// For every benchmark program we compile it three ways (T3 / touches /
/// touches+opt) on one processor and report the overhead relative to T3.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "programs/BoyerProgram.h"
#include "programs/MergesortProgram.h"
#include "programs/MiniCompilerProgram.h"
#include "programs/PermuteProgram.h"
#include "programs/QueensProgram.h"

using namespace multbench;

namespace {

struct Workload {
  const char *Name;
  std::string Setup;
  std::string Expr;
  const char *Note;
};

double run(const Workload &W, bool Touches, bool Optimize) {
  EngineConfig C = machine(1, /*InlineT=*/0); // inline futures: measure
                                              // pure touch overhead
  C.EmitTouchChecks = Touches;
  C.OptimizeTouches = Optimize;
  Engine E(C);
  return runVirtualSeconds(E, W.Setup, W.Expr);
}

} // namespace

int main() {
  std::vector<Workload> Workloads = {
      {"boyer", std::string(BoyerCommonSource) + BoyerSequentialArgs,
       "(boyer-test 1)", "rewrite-heavy, few loops"},
      {"queens", QueensSource, "(queens-seq 8)", "search, some loops"},
      {"compiler", MiniCompilerSource,
       "(mc-compile-program (mc-gen-program 21 6) #f)",
       "transformation passes"},
      {"mergesort", MergesortSource, "(mergesort-test 2048)",
       "tight loops (paper: stays near 100%)"},
      {"permute", PermuteSource, "(permute-run 32 20 10 8 8)",
       "vector loops"},
      {"arith-loop",
       "(define (spin n acc) (if (= n 0) acc (spin (- n 1) (+ acc n))))",
       "(spin 200000 0)", "pure iteration (best case for the optimizer)"},
  };

  printTitle("Implicit-touch overhead relative to T3 (section 2.2)");
  std::printf("  %-11s %10s %10s %10s %9s %9s   %s\n", "program", "T3",
              "no-opt", "opt", "ovh-raw", "ovh-opt", "note");
  double SumOpt = 0;
  int N = 0;
  for (const Workload &W : Workloads) {
    double T3 = run(W, false, false);
    double Raw = run(W, true, false);
    double Opt = run(W, true, true);
    double OvhRaw = (Raw / T3 - 1.0) * 100.0;
    double OvhOpt = (Opt / T3 - 1.0) * 100.0;
    SumOpt += OvhOpt;
    ++N;
    std::printf("  %-11s %10s %10s %10s %8.0f%% %8.0f%%   %s\n", W.Name,
                formatSeconds(T3).c_str(), formatSeconds(Raw).c_str(),
                formatSeconds(Opt).c_str(), OvhRaw, OvhOpt, W.Note);
  }
  printRule();
  std::printf("  mean optimized overhead: %.0f%%   (paper: <20%% to ~100%%, "
              "~65%% typical; ~100%% unoptimized)\n",
              SumOpt / N);
  return 0;
}
